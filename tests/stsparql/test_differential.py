"""Differential testing: columnar engine == interpreted engine.

Every query in the corpus runs through both the per-row interpreted
evaluator and the vectorised columnar evaluator over the same
(seeded, randomised) graph; the resulting :class:`SolutionSet`\\ s must
be equal — same variables, same multiset of rows (``SolutionSet.__eq__``
is deliberately row-order insensitive).  Updates are diffed on cloned
graphs: both engines must add and remove exactly the same triples.

The graph deliberately mixes plain ASCII, Greek and emoji literals
(the paper's corpora carry Greek toponyms) and WKT geometries, so the
dictionary-encoding round trip is exercised on non-trivial terms.
"""

import random

import pytest

from repro.rdf import Literal, NOA, RDF, XSD
from repro.stsparql import Strabon

pytest.importorskip("numpy")

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
    "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"
)

#: Greek and emoji municipality names — exercise non-ASCII round trips.
PLACE_NAMES = [
    "Attica",
    "Πάρνηθα",
    "Λακωνία",
    "Μάνη 🔥",
    "Ηλεία",
    "forest-🌲",
]

SEED = 20130318  # EDBT 2013


def _wkt_square(x: int, y: int, size: int) -> str:
    x2, y2 = x + size, y + size
    return (
        f"POLYGON (({x} {y}, {x2} {y}, {x2} {y2}, {x} {y2}, {x} {y}))"
    )


def build_graph(seed: int = SEED, hotspots: int = 24):
    """A seeded random hotspot graph in the paper's vocabulary."""
    rng = random.Random(seed)
    triples = []
    strdf = "http://strdf.di.uoa.gr/ontology#"
    geom_dt = strdf + "geometry"
    period_dt = strdf + "period"
    for i in range(hotspots):
        h = NOA.term(f"hotspot{i}")
        triples.append((h, RDF.type, NOA.term("Hotspot")))
        triples.append(
            (
                h,
                NOA.term("hasConfidence"),
                Literal(
                    repr(round(rng.uniform(0.0, 1.0), 3)),
                    datatype=XSD.base + "double",
                ),
            )
        )
        triples.append(
            (
                h,
                NOA.term("producedBy"),
                Literal(rng.choice(PLACE_NAMES)),
            )
        )
        x, y = rng.randrange(0, 12), rng.randrange(0, 12)
        triples.append(
            (
                h,
                NOA.term("hasGeometry"),
                Literal(
                    _wkt_square(x, y, rng.randrange(1, 4)),
                    datatype=geom_dt,
                ),
            )
        )
        hour = rng.randrange(0, 20)
        triples.append(
            (
                h,
                NOA.term("hasValidTime"),
                Literal(
                    f"[2007-08-25T{hour:02d}:00:00, "
                    f"2007-08-25T{hour + 3:02d}:00:00)",
                    datatype=period_dt,
                ),
            )
        )
        if rng.random() < 0.5:
            triples.append(
                (
                    h,
                    NOA.term("hasAcquisitionTime"),
                    Literal(
                        f"2007-08-25T{hour:02d}:30:00",
                        datatype=XSD.base + "dateTime",
                    ),
                )
            )
    # A couple of regions for spatial joins and subclass inference.
    for j, name in enumerate(("coast", "forest")):
        r = NOA.term(name)
        triples.append((r, RDF.type, NOA.term("Region")))
        triples.append(
            (
                r,
                NOA.term("hasGeometry"),
                Literal(_wkt_square(j * 6, 0, 8), datatype=geom_dt),
            )
        )
    return triples


def make_engines():
    interpreted = Strabon(query_engine="interpreted")
    columnar = Strabon(query_engine="columnar")
    for s, p, o in build_graph():
        interpreted.add(s, p, o)
        columnar.add(s, p, o)
    return interpreted, columnar


QUERIES = [
    # Plain BGP joins.
    "SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c }",
    "SELECT * WHERE { ?h noa:producedBy ?src ; noa:hasConfidence ?c }",
    # Numeric filters (vectorised comparison path).
    """SELECT ?h WHERE { ?h noa:hasConfidence ?c .
       FILTER(?c > 0.5) }""",
    """SELECT ?h ?c WHERE { ?h noa:hasConfidence ?c .
       FILTER(?c >= 0.25 && ?c < 0.75) }""",
    """SELECT ?h WHERE { ?h noa:hasConfidence ?c .
       FILTER(!(?c <= 0.5) || ?c = 0.125) }""",
    # String / mixed comparisons (per-combination fallback path).
    """SELECT ?h ?src WHERE { ?h noa:producedBy ?src .
       FILTER(?src = "Πάρνηθα") }""",
    """SELECT ?h WHERE { ?h noa:producedBy ?src .
       FILTER(?src != "Μάνη 🔥") }""",
    # Datetime comparison (vectorised instant keys).
    """SELECT ?h ?t WHERE { ?h noa:hasAcquisitionTime ?t .
       FILTER(?t >= "2007-08-25T06:00:00"^^xsd:dateTime) }""",
    # Spatial join + predicate memo.
    """SELECT ?h WHERE {
       noa:coast noa:hasGeometry ?cg .
       ?h a noa:Hotspot ; noa:hasGeometry ?hg .
       FILTER(strdf:anyInteract(?hg, ?cg)) }""",
    """SELECT ?a ?b WHERE {
       ?a a noa:Region ; noa:hasGeometry ?ga .
       ?b a noa:Hotspot ; noa:hasGeometry ?gb .
       FILTER(strdf:contains(?ga, ?gb)) }""",
    # Temporal relations (vectorised Allen formulas).
    """SELECT ?h WHERE { ?h noa:hasValidTime ?t .
       FILTER(strdf:during("2007-08-25T10:30:00", ?t)) }""",
    """SELECT ?a ?b WHERE {
       ?a noa:hasValidTime ?ta . ?b noa:hasValidTime ?tb .
       FILTER(?a != ?b) FILTER(strdf:periodOverlaps(?ta, ?tb)) }""",
    """SELECT ?a ?b WHERE {
       ?a noa:hasValidTime ?ta . ?b noa:hasValidTime ?tb .
       FILTER(strdf:before(?ta, ?tb)) }""",
    # OPTIONAL / UNION / MINUS / BIND / EXISTS.
    """SELECT ?h ?t WHERE { ?h noa:hasConfidence ?c .
       OPTIONAL { ?h noa:hasAcquisitionTime ?t } }""",
    """SELECT ?x WHERE {
       { ?x a noa:Hotspot } UNION { ?x a noa:Region } }""",
    """SELECT ?h WHERE { ?h a noa:Hotspot .
       MINUS { ?h noa:hasAcquisitionTime ?t } }""",
    """SELECT ?h ?twice WHERE { ?h noa:hasConfidence ?c .
       BIND(?c * 2 AS ?twice) }""",
    """SELECT ?h WHERE { ?h a noa:Hotspot .
       FILTER(EXISTS { ?h noa:hasAcquisitionTime ?t }) }""",
    """SELECT ?h WHERE { ?h a noa:Hotspot .
       FILTER(!bound(?missing)) }""",
    # Aggregation and grouping.
    """SELECT ?src (COUNT(?h) AS ?n) (AVG(?c) AS ?mean)
       WHERE { ?h noa:producedBy ?src ; noa:hasConfidence ?c }
       GROUP BY ?src""",
    """SELECT ?src (strdf:union(?g) AS ?area)
       WHERE { ?h noa:producedBy ?src ; noa:hasGeometry ?g }
       GROUP BY ?src""",
    """SELECT (COUNT(*) AS ?n) WHERE { ?h a noa:Hotspot }""",
    # Modifiers.
    """SELECT DISTINCT ?src WHERE { ?h noa:producedBy ?src }""",
    """SELECT ?h ?c WHERE { ?h noa:hasConfidence ?c }
       ORDER BY DESC(?c) ?h LIMIT 7""",
    """SELECT ?h WHERE { ?h a noa:Hotspot } OFFSET 5 LIMIT 5""",
    # Subselect join.
    """SELECT ?h ?src WHERE {
       ?h noa:producedBy ?src .
       { SELECT DISTINCT ?src WHERE {
           ?x noa:producedBy ?src ; noa:hasConfidence ?c .
           FILTER(?c > 0.6) } } }""",
    # Projection expressions over geometries and strings.
    """SELECT ?h (strdf:area(?g) AS ?a) WHERE {
       ?h a noa:Hotspot ; noa:hasGeometry ?g }""",
    """SELECT (str(?src) AS ?name) WHERE { ?h noa:producedBy ?src }""",
]

ASKS = [
    "ASK { ?h noa:hasConfidence ?c . FILTER(?c > 0.99) }",
    "ASK { ?h noa:producedBy \"Λακωνία\" }",
    "ASK { ?h noa:producedBy \"nowhere\" }",
]

UPDATES = [
    """INSERT { ?h noa:flagged "yes" }
       WHERE { ?h noa:hasConfidence ?c . FILTER(?c > 0.8) }""",
    """DELETE { ?h noa:hasConfidence ?c }
       WHERE { ?h noa:hasConfidence ?c . FILTER(?c < 0.1) }""",
    """DELETE { ?h noa:producedBy ?src }
       INSERT { ?h noa:producedBy "μετονομασία-✅" }
       WHERE { ?h noa:producedBy ?src .
               FILTER(?src = "Μάνη 🔥") }""",
]


@pytest.fixture(scope="module")
def engines():
    return make_engines()


@pytest.mark.parametrize("query", QUERIES)
def test_select_differential(engines, query):
    interpreted, columnar = engines
    expected = interpreted.select(PREFIX + query)
    got = columnar.select(PREFIX + query)
    assert got == expected


@pytest.mark.parametrize("query", ASKS)
def test_ask_differential(engines, query):
    interpreted, columnar = engines
    assert columnar.ask(PREFIX + query) == interpreted.ask(
        PREFIX + query
    )


@pytest.mark.parametrize("update", UPDATES)
def test_update_differential(update):
    # Fresh engine pair per update: both start from the same graph and
    # must end with the same triple set.
    interpreted, columnar = make_engines()
    ri = interpreted.update(PREFIX + update)
    rc = columnar.update(PREFIX + update)
    assert (rc.added, rc.removed) == (ri.added, ri.removed)
    assert set(columnar.graph.triples()) == set(
        interpreted.graph.triples()
    )


def test_randomised_threshold_sweep(engines):
    """Seeded sweep: many filter thresholds, both engines agree."""
    interpreted, columnar = engines
    rng = random.Random(SEED + 1)
    for _ in range(20):
        lo = round(rng.uniform(0.0, 1.0), 3)
        hi = round(rng.uniform(0.0, 1.0), 3)
        q = (
            PREFIX
            + f"""SELECT ?h ?c WHERE {{ ?h noa:hasConfidence ?c .
            FILTER(?c >= {lo} && ?c <= {hi}) }}"""
        )
        assert columnar.select(q) == interpreted.select(q)


def test_engines_actually_differ(engines):
    interpreted, columnar = engines
    assert interpreted.engine_name == "interpreted"
    assert columnar.engine_name == "columnar"
