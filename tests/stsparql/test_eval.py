"""stSPARQL evaluation: joins, filters, OPTIONAL, UNION, modifiers."""

import pytest

from repro.rdf import Literal, NOA, RDF, RDFS, XSD
from repro.stsparql import Strabon

PREFIX = "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n" \
         "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n" \
         "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(
        """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
noa:h1 a noa:Hotspot ; noa:conf 1.0 ; noa:sensor "MSG1" ; rdfs:label "one" .
noa:h2 a noa:Hotspot ; noa:conf 0.5 ; noa:sensor "MSG2" .
noa:h3 a noa:Hotspot ; noa:conf 0.5 ; noa:sensor "MSG1" .
noa:other a noa:Shapefile .
"""
    )
    return s


class TestBasicMatching:
    def test_type_scan(self, engine):
        r = engine.select(PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }")
        assert len(r) == 3

    def test_join_two_patterns(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h a noa:Hotspot ; noa:sensor "MSG1" . }'
        )
        assert {row["h"].local_name() for row in r} == {"h1", "h3"}

    def test_select_star(self, engine):
        r = engine.select(PREFIX + "SELECT * WHERE { ?h noa:conf ?c }")
        assert set(r.variables) == {"h", "c"}

    def test_no_match_empty(self, engine):
        r = engine.select(PREFIX + "SELECT ?x WHERE { ?x a noa:Missing }")
        assert len(r) == 0

    def test_variable_predicate(self, engine):
        r = engine.select(
            PREFIX + "SELECT ?p ?o WHERE { noa:h1 ?p ?o }"
        )
        assert len(r) == 4

    def test_ask(self, engine):
        assert engine.ask(PREFIX + "ASK { ?h a noa:Hotspot }")
        assert not engine.ask(PREFIX + "ASK { ?h a noa:Volcano }")


class TestFilters:
    def test_numeric_comparison(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h noa:conf ?c . FILTER(?c > 0.7) }"
        )
        assert [row["h"].local_name() for row in r] == ["h1"]

    def test_string_equality(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h noa:sensor ?s . FILTER(?s = "MSG2") }'
        )
        assert len(r) == 1

    def test_str_comparison(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h noa:conf ?c . FILTER(str(?c) = "1.0") }'
        )
        assert len(r) == 1

    def test_logical_operators(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h noa:conf ?c ; noa:sensor ?s . '
            'FILTER(?c > 0.7 || ?s = "MSG2") }'
        )
        assert len(r) == 2

    def test_negation(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h noa:sensor ?s . FILTER(!(?s = "MSG1")) }'
        )
        assert len(r) == 1

    def test_filter_error_is_false(self, engine):
        # conf of noa:other is unbound -> error -> row dropped, not raised.
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h a noa:Hotspot . "
            "OPTIONAL { ?h rdfs:label ?l } FILTER(strlen(?l) > 0) }"
        )
        assert len(r) == 1

    def test_regex(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h noa:sensor ?s . FILTER(regex(?s, "^MSG")) }'
        )
        assert len(r) == 3

    def test_arithmetic_in_filter(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h noa:conf ?c . FILTER(?c * 2 >= 1.0) }"
        )
        assert len(r) == 3


class TestOptionalUnionMinus:
    def test_optional_binds_when_present(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h ?l WHERE { ?h a noa:Hotspot . "
            "OPTIONAL { ?h rdfs:label ?l } }"
        )
        labels = {row["h"].local_name(): row.get("l") for row in r}
        assert labels["h1"] is not None
        assert labels["h2"] is None

    def test_not_bound_idiom(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h a noa:Hotspot . "
            "OPTIONAL { ?h rdfs:label ?l } FILTER(!bound(?l)) }"
        )
        assert {row["h"].local_name() for row in r} == {"h2", "h3"}

    def test_union(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?x WHERE { { ?x a noa:Hotspot } UNION { ?x a noa:Shapefile } }"
        )
        assert len(r) == 4

    def test_minus(self, engine):
        r = engine.select(
            PREFIX
            + 'SELECT ?h WHERE { ?h a noa:Hotspot . '
            'MINUS { ?h noa:sensor "MSG1" } }'
        )
        assert [row["h"].local_name() for row in r] == ["h2"]

    def test_exists(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h a noa:Hotspot . "
            "FILTER EXISTS { ?h rdfs:label ?l } }"
        )
        assert len(r) == 1

    def test_not_exists(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h a noa:Hotspot . "
            "FILTER NOT EXISTS { ?h rdfs:label ?l } }"
        )
        assert len(r) == 2


class TestModifiers:
    def test_distinct(self, engine):
        r = engine.select(
            PREFIX + "SELECT DISTINCT ?s WHERE { ?h noa:sensor ?s }"
        )
        assert len(r) == 2

    def test_order_by(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h ?c WHERE { ?h noa:conf ?c } ORDER BY DESC(?c) ?h"
        )
        confs = [float(row["c"].lexical) for row in r]
        assert confs == sorted(confs, reverse=True)

    def test_limit_offset(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h WHERE { ?h a noa:Hotspot } ORDER BY ?h LIMIT 1 OFFSET 1"
        )
        assert len(r) == 1
        assert r.rows[0]["h"].local_name() == "h2"

    def test_bind(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?h ?twice WHERE { ?h noa:conf ?c . "
            "BIND(?c * 2 AS ?twice) }"
        )
        for row in r:
            assert row["twice"] is not None


class TestAggregates:
    def test_count_group(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?s (COUNT(?h) AS ?n) WHERE { ?h noa:sensor ?s } GROUP BY ?s"
        )
        by_sensor = {row["s"].lexical: int(row["n"].lexical) for row in r}
        assert by_sensor == {"MSG1": 2, "MSG2": 1}

    def test_having(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT ?s WHERE { ?h noa:sensor ?s } GROUP BY ?s "
            "HAVING (COUNT(?h) >= 2)"
        )
        assert len(r) == 1

    def test_aggregate_without_group_by(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT (COUNT(?h) AS ?n) (AVG(?c) AS ?avg) "
            "WHERE { ?h noa:conf ?c }"
        )
        assert int(r.rows[0]["n"].lexical) == 3
        assert float(r.rows[0]["avg"].lexical) == pytest.approx(2.0 / 3)

    def test_min_max_sum(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT (MIN(?c) AS ?lo) (MAX(?c) AS ?hi) (SUM(?c) AS ?total) "
            "WHERE { ?h noa:conf ?c }"
        )
        row = r.rows[0]
        assert float(row["lo"].lexical) == 0.5
        assert float(row["hi"].lexical) == 1.0
        assert float(row["total"].lexical) == 2.0

    def test_count_distinct(self, engine):
        r = engine.select(
            PREFIX
            + "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?h noa:sensor ?s }"
        )
        assert int(r.rows[0]["n"].lexical) == 2


class TestRDFSInference:
    def test_subclass_instances_visible(self):
        s = Strabon()
        s.load_turtle(
            """
@prefix clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
clc:ConiferousForest rdfs:subClassOf clc:Forests .
clc:lu1 a clc:ConiferousForest .
"""
        )
        r = s.select(
            "PREFIX clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#>\n"
            "SELECT ?x WHERE { ?x a clc:Forests }"
        )
        assert len(r) == 1

    def test_inference_disabled(self):
        s = Strabon(enable_inference=False)
        s.load_turtle(
            """
@prefix clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
clc:ConiferousForest rdfs:subClassOf clc:Forests .
clc:lu1 a clc:ConiferousForest .
"""
        )
        r = s.select(
            "PREFIX clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#>\n"
            "SELECT ?x WHERE { ?x a clc:Forests }"
        )
        assert len(r) == 0
