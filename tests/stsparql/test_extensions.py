"""Engine extensions: strdf:transform / strdf:srid and the GeoSPARQL
(geof:) function aliases."""

import pytest

from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/>\n"
)

DATA = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
noa:athens a noa:Site ;
  strdf:hasGeometry "POINT (23.7275 37.9838)"^^strdf:geometry .
noa:pixel a noa:Hotspot ;
  strdf:hasGeometry "POLYGON ((23.70 37.96, 23.76 37.96, 23.76 38.00, 23.70 38.00, 23.70 37.96))"^^strdf:geometry .
"""


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(DATA)
    return s


class TestTransform:
    def test_point_to_greek_grid(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:transform(?g, "2100") AS ?p) WHERE {
                noa:athens strdf:hasGeometry ?g }"""
        )
        projected = r.rows[0]["p"].value
        assert projected.x == pytest.approx(476070, abs=60)
        assert projected.y == pytest.approx(4204050, abs=60)

    def test_roundtrip_through_4326(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT
              (strdf:transform(strdf:transform(?g, "2100"), "4326") AS ?back)
              WHERE { noa:athens strdf:hasGeometry ?g }"""
        )
        back = r.rows[0]["back"].value
        assert back.x == pytest.approx(23.7275, abs=1e-6)
        assert back.y == pytest.approx(37.9838, abs=1e-6)

    def test_polygon_area_in_square_metres(self, engine):
        # A ~6.6 km x 4.4 km pixel: the projected area must be ~29 km^2.
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:transform(?g, "2100")) AS ?a)
              WHERE { noa:pixel strdf:hasGeometry ?g }"""
        )
        area_m2 = float(r.rows[0]["a"].lexical)
        assert area_m2 == pytest.approx(23.3e6, rel=0.15)

    def test_srid_detection(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:srid(?g) AS ?s)
                (strdf:srid(strdf:transform(?g, "2100")) AS ?s2)
              WHERE { noa:athens strdf:hasGeometry ?g }"""
        )
        assert r.rows[0]["s"].lexical.endswith("4326")
        assert r.rows[0]["s2"].lexical.endswith("2100")

    def test_unknown_srs_is_error(self, engine):
        # Errors make the filter false -> zero rows, no exception.
        r = engine.select(
            PREFIX
            + """SELECT ?g WHERE { noa:athens strdf:hasGeometry ?g .
                FILTER(strdf:area(strdf:transform(?g, "32633")) > 0) }"""
        )
        assert len(r) == 0


class TestGeoSPARQLAliases:
    def test_sf_intersects_matches_any_interact(self, engine):
        strdf_rows = engine.select(
            PREFIX
            + """SELECT ?a ?b WHERE {
              ?a strdf:hasGeometry ?ga . ?b strdf:hasGeometry ?gb .
              FILTER(strdf:anyInteract(?ga, ?gb)) }"""
        )
        geof_rows = engine.select(
            PREFIX
            + """SELECT ?a ?b WHERE {
              ?a strdf:hasGeometry ?ga . ?b strdf:hasGeometry ?gb .
              FILTER(geof:sfIntersects(?ga, ?gb)) }"""
        )
        assert {tuple(sorted((r["a"], r["b"]), key=str)) for r in strdf_rows} \
            == {tuple(sorted((r["a"], r["b"]), key=str)) for r in geof_rows}

    def test_sf_contains(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?x WHERE {
              noa:athens strdf:hasGeometry ?pg .
              ?x a noa:Hotspot ; strdf:hasGeometry ?g .
              FILTER(geof:sfContains(?g, ?pg)) }"""
        )
        assert len(r) == 1

    def test_geof_constructors(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (geof:buffer(?g, 0.01) AS ?b)
                (geof:boundary(?g) AS ?ring)
              WHERE { noa:pixel strdf:hasGeometry ?g }"""
        )
        row = r.rows[0]
        assert row["b"].value.area > 0
        assert row["ring"].value.length > 0

    def test_wkt_literal_datatype_accepted(self):
        s = Strabon()
        s.load_turtle(
            """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix geo: <http://www.opengis.net/ont/geosparql#> .
noa:x a noa:Site ;
  geo:asWKT "POINT (21 38)"^^geo:wktLiteral .
"""
        )
        r = s.select(
            PREFIX
            + "PREFIX geo: <http://www.opengis.net/ont/geosparql#>\n"
            + """SELECT ?x WHERE { ?x geo:asWKT ?g .
                FILTER(geof:sfIntersects(?g,
                  "POLYGON ((20 37, 22 37, 22 39, 20 39, 20 37))"^^geo:wktLiteral)) }"""
        )
        assert len(r) == 1
