"""stSPARQL parser coverage."""

import pytest

from repro.rdf import NOA, RDF, STRDF
from repro.rdf.term import Literal, URI, Variable
from repro.stsparql import SparqlParseError
from repro.stsparql import ast
from repro.stsparql.parser import parse


class TestSelect:
    def test_simple_select(self):
        q = parse("SELECT ?s WHERE { ?s a noa:Hotspot . }")
        assert isinstance(q, ast.SelectQuery)
        assert q.projections[0].variable == Variable("s")
        bgp = q.pattern.elements[0]
        assert isinstance(bgp, ast.BGP)
        assert bgp.triples[0].predicate == RDF.type

    def test_select_star(self):
        q = parse("SELECT * WHERE { ?s ?p ?o }")
        assert q.select_star

    def test_distinct(self):
        q = parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert q.distinct

    def test_expression_projection(self):
        q = parse(
            "SELECT ( strdf:boundary(?g) AS ?b ) WHERE { ?s strdf:hasGeometry ?g }"
        )
        proj = q.projections[0]
        assert proj.variable == Variable("b")
        assert isinstance(proj.expression, ast.FunctionCall)
        assert proj.expression.name == STRDF.base + "boundary"

    def test_predicate_object_lists(self):
        q = parse(
            "SELECT ?s WHERE { ?s a noa:Hotspot ; noa:p ?a, ?b . }"
        )
        bgp = q.pattern.elements[0]
        assert len(bgp.triples) == 3

    def test_variable_predicate(self):
        q = parse("SELECT ?s WHERE { ?s ?hProperty ?hObject . }")
        bgp = q.pattern.elements[0]
        assert bgp.triples[0].predicate == Variable("hProperty")

    def test_filter_with_trailing_dot(self):
        # The paper writes FILTER(...) . inside groups.
        q = parse(
            'SELECT ?s WHERE { ?s noa:p ?v . FILTER( ?v > 3 ) . ?s noa:q ?w . }'
        )
        kinds = [type(e).__name__ for e in q.pattern.elements]
        assert kinds == ["BGP", "Filter", "BGP"]

    def test_optional_bound_combo(self):
        q = parse(
            """SELECT ?h WHERE {
                 ?h a noa:Hotspot .
                 OPTIONAL { ?c a noa:Other . FILTER(strdf:anyInteract(?h, ?c)) }
                 FILTER(!bound(?c)) }"""
        )
        assert any(isinstance(e, ast.Optional_) for e in q.pattern.elements)

    def test_group_by_having(self):
        q = parse(
            """SELECT ?h (COUNT(?p) AS ?n) WHERE { ?h noa:prev ?p }
               GROUP BY ?h HAVING (COUNT(?p) >= 3)"""
        )
        assert len(q.group_by) == 1
        assert len(q.having) == 1

    def test_order_limit_offset(self):
        q = parse(
            "SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 2"
        )
        assert q.order_by[0].descending
        assert q.limit == 5 and q.offset == 2

    def test_union(self):
        q = parse(
            "SELECT ?s WHERE { { ?s a noa:A } UNION { ?s a noa:B } }"
        )
        assert any(
            isinstance(e, ast.UnionPattern) for e in q.pattern.elements
        )

    def test_bind(self):
        q = parse(
            "SELECT ?area WHERE { ?s strdf:hasGeometry ?g . "
            "BIND(strdf:area(?g) AS ?area) }"
        )
        assert any(isinstance(e, ast.Bind) for e in q.pattern.elements)

    def test_subselect_in_braces(self):
        q = parse(
            "SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } } }"
        )
        assert isinstance(q.pattern.elements[0], ast.SubSelect)

    def test_bare_subselect(self):
        q = parse("SELECT ?s WHERE { SELECT ?s WHERE { ?s ?p ?o } }")
        assert isinstance(q.pattern.elements[0], ast.SubSelect)

    def test_typed_literal_object(self):
        q = parse(
            'SELECT ?s WHERE { ?s noa:t "2007-08-24T00:00:00"^^xsd:dateTime }'
        )
        obj = q.pattern.elements[0].triples[0].object
        assert isinstance(obj, Literal)
        assert obj.datatype.endswith("dateTime")

    def test_prefix_declaration(self):
        q = parse(
            "PREFIX my: <http://my.org/> SELECT ?s WHERE { ?s a my:Thing }"
        )
        obj = q.pattern.elements[0].triples[0].object
        assert obj == URI("http://my.org/Thing")

    def test_spatial_aggregate_parsed(self):
        q = parse(
            "SELECT (strdf:union(?g) AS ?u) WHERE { ?s strdf:hasGeometry ?g } "
            "GROUP BY ?s"
        )
        expr = q.projections[0].expression
        assert isinstance(expr, ast.Aggregate)
        assert expr.name == STRDF.base + "union"

    def test_binary_strdf_union_is_function(self):
        q = parse(
            "SELECT (strdf:union(?a, ?b) AS ?u) WHERE { ?s noa:p ?a, ?b }"
        )
        expr = q.projections[0].expression
        assert isinstance(expr, ast.FunctionCall)


class TestAskAndUpdates:
    def test_ask(self):
        q = parse("ASK { ?s a noa:Hotspot }")
        assert isinstance(q, ast.AskQuery)

    def test_delete_where_template(self):
        q = parse("DELETE { ?h ?p ?o } WHERE { ?h ?p ?o . FILTER(?o > 1) }")
        assert isinstance(q, ast.UpdateRequest)
        assert len(q.delete_template) == 1
        assert q.where_pattern is not None

    def test_delete_insert_where(self):
        q = parse(
            """DELETE { ?h strdf:hasGeometry ?g }
               INSERT { ?h strdf:hasGeometry ?d }
               WHERE { ?h strdf:hasGeometry ?g . BIND(?g AS ?d) }"""
        )
        assert q.delete_template and q.insert_template

    def test_insert_data(self):
        q = parse(
            "INSERT DATA { noa:h1 a noa:Hotspot . noa:h1 noa:c 1.0 . }"
        )
        assert len(q.insert_template) == 2
        assert q.where_pattern is None

    def test_delete_data(self):
        q = parse("DELETE DATA { noa:h1 a noa:Hotspot }")
        assert len(q.delete_template) == 1

    def test_shorthand_delete_where(self):
        q = parse("DELETE WHERE { ?h a noa:Hotspot }")
        assert q.delete_template == _template_of(q.where_pattern)


def _template_of(pattern):
    triples = []
    for e in pattern.elements:
        triples.extend(e.triples)
    return tuple(triples)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT WHERE { ?s ?p ?o }",
            "SELECT ?s WHERE { ?s ?p }",
            "SELECT ?s WHERE { ?s ?p ?o ",
            "FROB ?x WHERE { }",
            "SELECT ?s WHERE { ?s bad:prefixed ?o }",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SparqlParseError):
            parse(bad)
