"""Property-based tests of the stSPARQL evaluator's algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, NOA, RDF, XSD
from repro.stsparql import Strabon

PREFIX = "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"

#: Strategy: a small random "sensor readings" graph.
node_ids = st.integers(min_value=0, max_value=6)
readings = st.lists(
    st.tuples(node_ids, st.integers(min_value=-5, max_value=5)),
    min_size=0,
    max_size=25,
)


def build_engine(pairs):
    engine = Strabon()
    for node_id, value in pairs:
        node = NOA.term(f"n{node_id}")
        engine.graph.add(node, RDF.type, NOA.Sensor)
        engine.graph.add(
            node,
            NOA.reading,
            Literal(str(value), datatype=XSD.base + "integer"),
        )
    return engine


class TestAlgebraProperties:
    @settings(max_examples=30, deadline=None)
    @given(readings, st.integers(min_value=-5, max_value=5))
    def test_filter_partition(self, pairs, threshold):
        """FILTER(e) and FILTER(!e) partition the solution multiset."""
        engine = build_engine(pairs)
        base = engine.select(
            PREFIX + "SELECT ?s ?v WHERE { ?s noa:reading ?v }"
        )
        above = engine.select(
            PREFIX
            + f"SELECT ?s ?v WHERE {{ ?s noa:reading ?v . "
            f"FILTER(?v > {threshold}) }}"
        )
        not_above = engine.select(
            PREFIX
            + f"SELECT ?s ?v WHERE {{ ?s noa:reading ?v . "
            f"FILTER(!(?v > {threshold})) }}"
        )
        assert len(above) + len(not_above) == len(base)

    @settings(max_examples=30, deadline=None)
    @given(readings)
    def test_union_with_self_doubles(self, pairs):
        engine = build_engine(pairs)
        single = engine.select(
            PREFIX + "SELECT ?s WHERE { ?s a noa:Sensor }"
        )
        doubled = engine.select(
            PREFIX
            + "SELECT ?s WHERE { { ?s a noa:Sensor } UNION "
            "{ ?s a noa:Sensor } }"
        )
        assert len(doubled) == 2 * len(single)

    @settings(max_examples=30, deadline=None)
    @given(readings)
    def test_distinct_is_set_size(self, pairs):
        engine = build_engine(pairs)
        distinct = engine.select(
            PREFIX + "SELECT DISTINCT ?s WHERE { ?s noa:reading ?v }"
        )
        expected = len({node_id for node_id, _ in pairs})
        assert len(distinct) == expected

    @settings(max_examples=30, deadline=None)
    @given(readings, st.integers(min_value=0, max_value=30))
    def test_limit_bounds(self, pairs, limit):
        engine = build_engine(pairs)
        base = engine.select(
            PREFIX + "SELECT ?s ?v WHERE { ?s noa:reading ?v }"
        )
        limited = engine.select(
            PREFIX
            + f"SELECT ?s ?v WHERE {{ ?s noa:reading ?v }} LIMIT {limit}"
        )
        assert len(limited) == min(limit, len(base))

    @settings(max_examples=30, deadline=None)
    @given(readings)
    def test_count_aggregate_matches_row_count(self, pairs):
        engine = build_engine(pairs)
        base = engine.select(
            PREFIX + "SELECT ?s ?v WHERE { ?s noa:reading ?v }"
        )
        counted = engine.select(
            PREFIX
            + "SELECT (COUNT(?v) AS ?n) WHERE { ?s noa:reading ?v }"
        )
        assert int(counted.rows[0]["n"].lexical) == len(base)

    @settings(max_examples=30, deadline=None)
    @given(readings)
    def test_optional_never_loses_rows(self, pairs):
        engine = build_engine(pairs)
        plain = engine.select(
            PREFIX + "SELECT ?s WHERE { ?s a noa:Sensor }"
        )
        with_optional = engine.select(
            PREFIX
            + "SELECT ?s WHERE { ?s a noa:Sensor . "
            "OPTIONAL { ?s noa:missing ?m } }"
        )
        assert len(with_optional) == len(plain)

    @settings(max_examples=30, deadline=None)
    @given(readings)
    def test_order_by_is_permutation(self, pairs):
        engine = build_engine(pairs)
        base = engine.select(
            PREFIX + "SELECT ?s ?v WHERE { ?s noa:reading ?v }"
        )
        ordered = engine.select(
            PREFIX
            + "SELECT ?s ?v WHERE { ?s noa:reading ?v } ORDER BY ?v"
        )
        assert sorted(map(str, base.column("v"))) == sorted(
            map(str, ordered.column("v"))
        )
        values = [int(t.lexical) for t in ordered.column("v")]
        assert values == sorted(values)

    @settings(max_examples=20, deadline=None)
    @given(readings)
    def test_ask_iff_nonempty(self, pairs):
        engine = build_engine(pairs)
        rows = engine.select(
            PREFIX + "SELECT ?s WHERE { ?s noa:reading ?v }"
        )
        assert engine.ask(
            PREFIX + "ASK { ?s noa:reading ?v }"
        ) == bool(rows)

    @settings(max_examples=20, deadline=None)
    @given(readings, st.integers(min_value=-5, max_value=5))
    def test_update_then_query_consistency(self, pairs, threshold):
        """Deleting rows below a threshold leaves exactly the rest."""
        engine = build_engine(pairs)
        before = engine.select(
            PREFIX
            + f"SELECT ?s ?v WHERE {{ ?s noa:reading ?v . "
            f"FILTER(?v >= {threshold}) }}"
        )
        engine.update(
            PREFIX
            + f"DELETE {{ ?s noa:reading ?v }} WHERE {{ "
            f"?s noa:reading ?v . FILTER(?v < {threshold}) }}"
        )
        after = engine.select(
            PREFIX + "SELECT ?s ?v WHERE { ?s noa:reading ?v }"
        )
        assert len(after) == len(before)
