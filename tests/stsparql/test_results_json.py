"""SPARQL 1.1 Query Results JSON serialisation."""

import json

import pytest

from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
)


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(
        """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
noa:h1 a noa:Hotspot ; noa:conf 1.0 ; rdfs:label "Fire near Patras"@en .
noa:h2 a noa:Hotspot ; noa:conf 0.5 .
"""
    )
    return s


class TestSparqlJson:
    def test_head_vars(self, engine):
        result = engine.select(
            PREFIX + "SELECT ?h ?c WHERE { ?h noa:conf ?c }"
        )
        doc = result.to_sparql_json()
        assert doc["head"]["vars"] == ["h", "c"]
        assert len(doc["results"]["bindings"]) == 2

    def test_uri_encoding(self, engine):
        doc = engine.select(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot } ORDER BY ?h"
        ).to_sparql_json()
        first = doc["results"]["bindings"][0]["h"]
        assert first["type"] == "uri"
        assert first["value"].endswith("#h1")

    def test_typed_literal_encoding(self, engine):
        doc = engine.select(
            PREFIX + "SELECT ?c WHERE { noa:h1 noa:conf ?c }"
        ).to_sparql_json()
        binding = doc["results"]["bindings"][0]["c"]
        assert binding["type"] == "literal"
        assert binding["datatype"].endswith("double")

    def test_language_tag_encoding(self, engine):
        doc = engine.select(
            PREFIX + "SELECT ?l WHERE { noa:h1 rdfs:label ?l }"
        ).to_sparql_json()
        binding = doc["results"]["bindings"][0]["l"]
        assert binding["xml:lang"] == "en"
        assert "datatype" not in binding

    def test_unbound_variables_omitted(self, engine):
        doc = engine.select(
            PREFIX
            + "SELECT ?h ?l WHERE { ?h a noa:Hotspot . "
            "OPTIONAL { ?h rdfs:label ?l } }"
        ).to_sparql_json()
        with_label = [
            b for b in doc["results"]["bindings"] if "l" in b
        ]
        assert len(with_label) == 1

    def test_json_serialisable(self, engine):
        doc = engine.select(
            PREFIX + "SELECT * WHERE { ?s ?p ?o }"
        ).to_sparql_json()
        text = json.dumps(doc)
        assert json.loads(text) == doc
