"""Spatial function and aggregate evaluation (the strdf:* vocabulary)."""

import pytest

from repro.geometry import Polygon, loads_wkt
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)

DATA = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
noa:a a noa:Region ; strdf:hasGeometry "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"^^strdf:geometry .
noa:b a noa:Region ; strdf:hasGeometry "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"^^strdf:geometry .
noa:c a noa:Region ; strdf:hasGeometry "POLYGON ((10 10, 11 10, 11 11, 10 11, 10 10))"^^strdf:geometry .
noa:p a noa:Site ; strdf:hasGeometry "POINT (1 1)"^^strdf:geometry .
"""


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(DATA)
    return s


class TestSpatialPredicates:
    def test_any_interact_pairs(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?x ?y WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?gx .
              ?y a noa:Region ; strdf:hasGeometry ?gy .
              FILTER(?x != ?y) FILTER(strdf:anyInteract(?gx, ?gy)) }"""
        )
        pairs = {(row["x"].local_name(), row["y"].local_name()) for row in r}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_contains_constant_region(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?x WHERE {
              ?x strdf:hasGeometry ?g .
              FILTER(strdf:contains("POLYGON ((-1 -1, 7 -1, 7 7, -1 7, -1 -1))"^^strdf:WKT, ?g)) }"""
        )
        assert {row["x"].local_name() for row in r} == {"a", "b", "p"}

    def test_point_inside_polygon(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?x WHERE {
              noa:p strdf:hasGeometry ?pg .
              ?x a noa:Region ; strdf:hasGeometry ?g .
              FILTER(strdf:contains(?g, ?pg)) }"""
        )
        assert [row["x"].local_name() for row in r] == ["a"]

    def test_disjoint(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?x WHERE {
              noa:c strdf:hasGeometry ?cg .
              ?x a noa:Region ; strdf:hasGeometry ?g .
              FILTER(?x != noa:c) FILTER(strdf:disjoint(?g, ?cg)) }"""
        )
        assert len(r) == 2

    def test_distance_function(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:distance(?ga, ?gc) AS ?d) WHERE {
              noa:a strdf:hasGeometry ?ga . noa:c strdf:hasGeometry ?gc . }"""
        )
        d = float(r.rows[0]["d"].lexical)
        assert d == pytest.approx(((10 - 4) ** 2 * 2) ** 0.5)


class TestSpatialConstructors:
    def test_intersection_area(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:intersection(?ga, ?gb)) AS ?area)
              WHERE { noa:a strdf:hasGeometry ?ga . noa:b strdf:hasGeometry ?gb . }"""
        )
        assert float(r.rows[0]["area"].lexical) == pytest.approx(4.0)

    def test_boundary_returns_geometry_literal(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:boundary(?g) AS ?b) WHERE {
                noa:a strdf:hasGeometry ?g }"""
        )
        geom = r.rows[0]["b"].value
        assert geom.length == pytest.approx(16.0)

    def test_buffer(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:buffer(?g, 1.0)) AS ?a) WHERE {
                noa:p strdf:hasGeometry ?g }"""
        )
        assert float(r.rows[0]["a"].lexical) == pytest.approx(3.14, abs=0.2)

    def test_envelope_and_dimension(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:dimension(?g) AS ?d)
                (strdf:area(strdf:envelope(?g)) AS ?a)
              WHERE { noa:b strdf:hasGeometry ?g }"""
        )
        assert int(r.rows[0]["d"].lexical) == 2
        assert float(r.rows[0]["a"].lexical) == pytest.approx(16.0)

    def test_difference(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:difference(?ga, ?gb)) AS ?a)
              WHERE { noa:a strdf:hasGeometry ?ga . noa:b strdf:hasGeometry ?gb . }"""
        )
        assert float(r.rows[0]["a"].lexical) == pytest.approx(12.0)


class TestSpatialAggregates:
    def test_union_aggregate(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:union(?g)) AS ?a) WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?g .
              FILTER(?x != noa:c) }
              GROUP BY ?x"""
        )
        # grouped by x: each group has one geometry.
        areas = sorted(float(row["a"].lexical) for row in r)
        assert areas == [16.0, 16.0]

    def test_union_aggregate_single_group(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:union(?g)) AS ?a) WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?g . FILTER(?x != noa:c) }"""
        )
        # a ∪ b: 16 + 16 - 4 overlap
        assert float(r.rows[0]["a"].lexical) == pytest.approx(28.0)

    def test_extent_aggregate(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:extent(?g) AS ?e) WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?g . }"""
        )
        extent = r.rows[0]["e"].value
        assert extent.envelope.as_tuple() == (0.0, 0.0, 11.0, 11.0)

    def test_intersection_aggregate(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:area(strdf:intersection(?g)) AS ?a) WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?g . FILTER(?x != noa:c) }"""
        )
        assert float(r.rows[0]["a"].lexical) == pytest.approx(4.0)


class TestSpatialIndexAssist:
    def test_index_and_scan_agree(self, engine):
        query = (
            PREFIX
            + """SELECT ?x ?y WHERE {
              ?x a noa:Region ; strdf:hasGeometry ?gx .
              ?y a noa:Region ; strdf:hasGeometry ?gy .
              FILTER(strdf:anyInteract(?gx, ?gy)) }"""
        )
        with_index = {
            (row["x"], row["y"]) for row in engine.select(query)
        }
        no_index = Strabon(enable_spatial_index=False)
        no_index.load_turtle(DATA)
        without = {(row["x"], row["y"]) for row in no_index.select(query)}
        assert with_index == without
        assert len(with_index) == 5  # 3 self-pairs + (a,b) + (b,a)
