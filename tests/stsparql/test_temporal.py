"""stRDF valid time: period literals and temporal stSPARQL functions."""

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.rdf.temporal import PERIOD_DATATYPE, Period, PeriodError
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)

DATA = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
noa:fire1 a noa:Hotspot ;
  noa:hasValidTime "[2007-08-24T14:00:00, 2007-08-24T18:00:00)"^^strdf:period .
noa:fire2 a noa:Hotspot ;
  noa:hasValidTime "[2007-08-24T17:00:00, 2007-08-24T20:00:00)"^^strdf:period .
noa:fire3 a noa:Hotspot ;
  noa:hasValidTime "[2007-08-25T09:00:00, 2007-08-25T11:00:00)"^^strdf:period .
"""

instants = st.integers(min_value=0, max_value=10_000)


class TestPeriodModel:
    def test_parse_and_lexical_roundtrip(self):
        p = Period.parse("[2007-08-24T14:00:00, 2007-08-24T18:00:00)")
        assert Period.parse(p.lexical()) == p

    def test_degenerate_rejected(self):
        with pytest.raises(PeriodError):
            Period(datetime(2007, 1, 1), datetime(2007, 1, 1))

    def test_bad_lexical_rejected(self):
        with pytest.raises(PeriodError):
            Period.parse("2007-08-24/2007-08-25")

    def test_half_open_semantics(self):
        p = Period.parse("[2007-08-24T14:00:00, 2007-08-24T18:00:00)")
        assert p.contains_instant(datetime(2007, 8, 24, 14, 0))
        assert not p.contains_instant(datetime(2007, 8, 24, 18, 0))

    def test_overlaps_touching_is_false(self):
        a = Period(datetime(2007, 1, 1), datetime(2007, 1, 2))
        b = Period(datetime(2007, 1, 2), datetime(2007, 1, 3))
        assert not a.overlaps(b)
        assert a.meets(b)
        assert a.before(b) and b.after(a)

    def test_intersection_and_union(self):
        a = Period(datetime(2007, 1, 1), datetime(2007, 1, 3))
        b = Period(datetime(2007, 1, 2), datetime(2007, 1, 4))
        inter = a.intersection(b)
        assert inter == Period(datetime(2007, 1, 2), datetime(2007, 1, 3))
        assert a.union(b) == Period(
            datetime(2007, 1, 1), datetime(2007, 1, 4)
        )

    def test_literal_value_parses(self):
        from repro.rdf import Literal

        lit = Literal(
            "[2007-08-24T14:00:00, 2007-08-24T18:00:00)",
            datatype=PERIOD_DATATYPE,
        )
        assert isinstance(lit.value, Period)

    @given(instants, instants, instants, instants)
    def test_relation_trichotomy(self, a0, a1, b0, b1):
        base = datetime(2007, 1, 1)
        from datetime import timedelta

        mk = lambda lo, hi: Period(
            base + timedelta(minutes=min(lo, hi)),
            base + timedelta(minutes=max(lo, hi) + 1),
        )
        a, b = mk(a0, a1), mk(b0, b1)
        # Exactly one of: before, after, or sharing an instant (closed
        # sense: overlap of closures).
        relations = [a.before(b), a.after(b), a.overlaps(b)]
        assert any(relations)
        assert not (a.before(b) and a.after(b))
        if a.overlaps(b):
            assert not a.before(b) and not a.after(b)


class TestTemporalQueries:
    @pytest.fixture
    def engine(self):
        s = Strabon()
        s.load_turtle(DATA)
        return s

    def test_during_instant(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?h WHERE { ?h noa:hasValidTime ?t .
                FILTER(strdf:during("2007-08-24T15:30:00", ?t)) }"""
        )
        assert [row["h"].local_name() for row in r] == ["fire1"]

    def test_period_overlaps_join(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?a ?b WHERE {
              ?a noa:hasValidTime ?ta . ?b noa:hasValidTime ?tb .
              FILTER(?a != ?b) FILTER(strdf:periodOverlaps(?ta, ?tb)) }"""
        )
        pairs = {
            frozenset((row["a"].local_name(), row["b"].local_name()))
            for row in r
        }
        assert pairs == {frozenset(("fire1", "fire2"))}

    def test_before_after(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT ?h WHERE { ?h noa:hasValidTime ?t .
                FILTER(strdf:before(?t,
                  "[2007-08-25T00:00:00, 2007-08-26T00:00:00)")) }"""
        )
        assert {row["h"].local_name() for row in r} == {"fire1", "fire2"}

    def test_period_intersection_projection(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT (strdf:periodIntersection(?ta, ?tb) AS ?common)
              WHERE { noa:fire1 noa:hasValidTime ?ta .
                      noa:fire2 noa:hasValidTime ?tb . }"""
        )
        common = r.rows[0]["common"].value
        assert isinstance(common, Period)
        assert common.duration_seconds == 3600.0

    def test_period_constructor_and_accessors(self, engine):
        r = engine.select(
            PREFIX
            + """SELECT
               (strdf:periodStart(?t) AS ?s)
               (strdf:periodEnd(?t) AS ?e)
              WHERE { noa:fire1 noa:hasValidTime ?t }"""
        )
        row = r.rows[0]
        assert row["s"].lexical.startswith("2007-08-24T14")
        assert row["e"].lexical.startswith("2007-08-24T18")

    def test_disjoint_periods_no_intersection(self, engine):
        # Error (no intersection) -> filter false -> zero rows.
        r = engine.select(
            PREFIX
            + """SELECT ?x WHERE {
              noa:fire1 noa:hasValidTime ?ta . noa:fire3 noa:hasValidTime ?tb .
              BIND(strdf:periodIntersection(?ta, ?tb) AS ?x)
              FILTER(bound(?x)) }"""
        )
        assert len(r) == 0


class TestConstruct:
    def test_construct_builds_graph(self):
        s = Strabon()
        s.load_turtle(DATA)
        got = s.construct(
            PREFIX
            + """CONSTRUCT { ?h a noa:TimedObservation ;
                              noa:observedDuring ?t . }
                 WHERE { ?h noa:hasValidTime ?t }"""
        )
        assert len(got) == 6
        from repro.rdf import NOA, RDF

        assert (NOA.fire1, RDF.type, NOA.TimedObservation) in got

    def test_construct_with_limit(self):
        s = Strabon()
        s.load_turtle(DATA)
        got = s.construct(
            PREFIX
            + """CONSTRUCT { ?h a noa:TimedObservation }
                 WHERE { ?h noa:hasValidTime ?t } LIMIT 1"""
        )
        assert len(got) == 1
