"""SPARQL Update semantics, including the paper's refinement updates."""

import pytest

from repro.rdf import Literal, NOA, RDF, STRDF
from repro.stsparql import SparqlEvalError, Strabon

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(
        """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#> .
noa:land a noa:Hotspot ;
  strdf:hasGeometry "POLYGON ((21.3 37.4, 21.5 37.4, 21.5 37.6, 21.3 37.6, 21.3 37.4))"^^strdf:geometry ;
  noa:hasConfidence 1.0 .
noa:sea a noa:Hotspot ;
  strdf:hasGeometry "POLYGON ((30 30, 30.2 30, 30.2 30.2, 30 30.2, 30 30))"^^strdf:geometry ;
  noa:hasConfidence 0.5 .
noa:coastal a noa:Hotspot ;
  strdf:hasGeometry "POLYGON ((21.9 37.4, 22.1 37.4, 22.1 37.6, 21.9 37.6, 21.9 37.4))"^^strdf:geometry ;
  noa:hasConfidence 1.0 .
coast:Coastline_0 a coast:Coastline ;
  strdf:hasGeometry "POLYGON ((21 37, 22 37, 22 38, 21 38, 21 37))"^^strdf:geometry .
"""
    )
    return s


class TestDataForms:
    def test_insert_data(self, engine):
        result = engine.update(
            PREFIX + "INSERT DATA { noa:x a noa:Hotspot . }"
        )
        assert result.added == 1

    def test_insert_data_idempotent(self, engine):
        engine.update(PREFIX + "INSERT DATA { noa:x a noa:Hotspot }")
        again = engine.update(PREFIX + "INSERT DATA { noa:x a noa:Hotspot }")
        assert again.added == 0

    def test_delete_data(self, engine):
        result = engine.update(
            PREFIX + "DELETE DATA { noa:land a noa:Hotspot }"
        )
        assert result.removed == 1

    def test_data_with_variables_rejected(self, engine):
        with pytest.raises(SparqlEvalError):
            engine.update(PREFIX + "INSERT DATA { ?x a noa:Hotspot }")


class TestWhereForms:
    def test_insert_where(self, engine):
        result = engine.update(
            PREFIX
            + """INSERT { ?h noa:flagged noa:yes }
                 WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c .
                         FILTER(?c >= 1.0) }"""
        )
        assert result.added == 2

    def test_delete_where_pattern(self, engine):
        result = engine.update(
            PREFIX
            + """DELETE { ?h noa:hasConfidence ?c }
                 WHERE { ?h noa:hasConfidence ?c . FILTER(?c < 0.7) }"""
        )
        assert result.removed == 1

    def test_unbound_template_variable_skipped(self, engine):
        # ?missing is never bound: nothing is deleted, no crash (matches
        # SPARQL semantics; the paper's first update has this flavour).
        result = engine.update(
            PREFIX
            + """DELETE { ?h noa:hasConfidence ?missing }
                 WHERE { ?h a noa:Hotspot }"""
        )
        assert result.removed == 0


class TestPaperUpdates:
    def test_delete_in_sea(self, engine):
        result = engine.update(
            PREFIX
            + """DELETE {?h ?hProperty ?hObject}
WHERE {
  ?h a noa:Hotspot;
  strdf:hasGeometry ?hGeo;
  ?hProperty ?hObject.
  OPTIONAL {
    ?c a coast:Coastline ;
    strdf:hasGeometry ?cGeo .
    FILTER (strdf:anyInteract(?hGeo, ?cGeo))}
  FILTER(!bound(?c))}"""
        )
        assert result.removed == 3  # all three triples of noa:sea
        remaining = engine.select(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
        )
        assert {row["h"].local_name() for row in remaining} == {
            "land",
            "coastal",
        }

    def test_refine_in_coast(self, engine):
        result = engine.update(
            PREFIX
            + """DELETE {?h strdf:hasGeometry ?hGeo}
INSERT {?h strdf:hasGeometry ?dif}
WHERE {
  SELECT DISTINCT ?h ?hGeo
  (strdf:intersection(?hGeo, strdf:union(?cGeo)) AS ?dif)
  WHERE {
    ?h a noa:Hotspot ;
    strdf:hasGeometry ?hGeo .
    ?c a coast:Coastline ;
    strdf:hasGeometry ?cGeo .
    FILTER(strdf:anyInteract(?hGeo, ?cGeo))}
  GROUP BY ?h ?hGeo
  HAVING strdf:overlap(?hGeo, strdf:union(?cGeo))}"""
        )
        assert result.removed == 1 and result.added == 1
        geom = engine.graph.value(NOA.coastal, STRDF.hasGeometry)
        # The coastal hotspot lost its sea half: 0.2x0.2 -> 0.1x0.2.
        assert geom.value.area == pytest.approx(0.02, rel=1e-6)
        # The fully-inland hotspot was not touched.
        land_geom = engine.graph.value(NOA.land, STRDF.hasGeometry)
        assert land_geom.value.area == pytest.approx(0.04, rel=1e-6)

    def test_refinement_updates_are_idempotent(self, engine):
        update = (
            PREFIX
            + """DELETE {?h ?p ?o}
WHERE {
  ?h a noa:Hotspot; strdf:hasGeometry ?hGeo; ?p ?o.
  OPTIONAL { ?c a coast:Coastline ; strdf:hasGeometry ?cGeo .
             FILTER (strdf:anyInteract(?hGeo, ?cGeo))}
  FILTER(!bound(?c))}"""
        )
        first = engine.update(update)
        second = engine.update(update)
        assert first.removed == 3
        assert second.removed == 0


class TestStats:
    def test_last_stats_populated(self, engine):
        engine.select(PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }")
        stats = engine.last_stats
        assert stats.operation == "select"
        assert stats.rows == 3
        assert stats.total_seconds > 0
