"""The unified exception hierarchy and its transient/permanent markers."""

from __future__ import annotations

from repro.arraydb.errors import ArrayDBError, VaultError
from repro.errors import (
    AcquisitionFailed,
    ConfigurationError,
    Permanent,
    PermanentError,
    ReproError,
    ServiceStateError,
    StageTimeoutError,
    Transient,
    TransientError,
    WorkerCrashError,
    is_transient,
)
from repro.faults import FaultInjected
from repro.geometry.errors import GeometryError
from repro.stsparql.errors import (
    SparqlError,
    SparqlEvalError,
    SparqlParseError,
)


def test_package_bases_join_the_hierarchy():
    for cls in (ArrayDBError, SparqlError, GeometryError):
        assert issubclass(cls, ReproError)


def test_data_and_query_errors_are_permanent():
    for cls in (
        VaultError,
        SparqlParseError,
        SparqlEvalError,
        GeometryError,
        AcquisitionFailed,
    ):
        assert issubclass(cls, Permanent), cls
        assert not is_transient(cls("x"))


def test_infrastructure_errors_are_transient():
    for cls in (WorkerCrashError, StageTimeoutError, FaultInjected):
        assert issubclass(cls, Transient), cls
        assert is_transient(cls("x"))


def test_compatibility_bases_preserved():
    # Pre-hierarchy code caught ValueError / RuntimeError; the new
    # classes keep those bases so existing except clauses still work.
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(ServiceStateError, RuntimeError)
    assert issubclass(GeometryError, ValueError)


def test_markers_do_not_leak_into_each_other():
    assert not is_transient(PermanentError("x"))
    assert not is_transient(ReproError("unmarked is not retryable"))
    assert not is_transient(KeyError("foreign errors are not retryable"))
    assert issubclass(TransientError, Transient)
    assert not issubclass(TransientError, Permanent)
